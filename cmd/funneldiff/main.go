// Command funneldiff compares the pruning funnels of two synthesis runs
// and flags drift: stages whose share of enumerated candidates moved by
// more than a threshold, and runs that converged on different winning
// handlers. It is the run-to-run regression check for the elimination
// cascade — a cache that stopped hitting, a lower bound that stopped
// pruning, or a search that started abandoning candidates it used to
// score shows up as a share delta long before it shows up in wall-clock.
//
// Usage:
//
//	funneldiff old.json new.json
//	funneldiff -threshold 0.10 baseline.json candidate.json
//
// Each input is either a bare funnel report (abagnale -funnel) or a full
// run report (abagnale -metrics-json), from which the last "core.funnel"
// record is taken. Exit status 1 means drift was detected, 2 a usage or
// parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	threshold := flag.Float64("threshold", 0.05, "stage-share delta (fraction of enumerated) flagged as drift")
	c := cli.RegisterVersion("funneldiff", flag.CommandLine)
	flag.Parse()
	_, done := c.Setup() // handles -version
	defer func() { _ = done() }()
	if flag.NArg() != 2 {
		c.UsageExit("usage: funneldiff [-threshold 0.05] old.json new.json")
	}
	a, err := loadFunnel(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "funneldiff: %s: %v\n", flag.Arg(0), err)
		os.Exit(2)
	}
	b, err := loadFunnel(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "funneldiff: %s: %v\n", flag.Arg(1), err)
		os.Exit(2)
	}
	d := diff(a, b, *threshold)
	printDiff(os.Stdout, flag.Arg(0), flag.Arg(1), a, b, d)
	if d.Drifted() {
		os.Exit(1)
	}
}

// loadFunnel reads a funnel report from path: a bare RunFunnelReport or a
// full obs run report carrying "core.funnel" records (last one wins — it
// is the run's final state).
func loadFunnel(path string) (core.RunFunnelReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return core.RunFunnelReport{}, err
	}
	// A full run report nests funnels under records; try that shape first
	// so a bare report (which would also decode, emptily) is the fallback.
	var wrapped struct {
		Records map[string][]json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(raw, &wrapped); err == nil {
		if recs := wrapped.Records["core.funnel"]; len(recs) > 0 {
			raw = recs[len(recs)-1]
		}
	}
	var rep core.RunFunnelReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return core.RunFunnelReport{}, err
	}
	if rep.Total.Enumerated == 0 && len(rep.Total.Stages) == 0 {
		return core.RunFunnelReport{}, fmt.Errorf("no funnel data (neither a -funnel report nor a run report with core.funnel records)")
	}
	return rep, nil
}

// StageDelta is one stage's share movement between the two runs.
type StageDelta struct {
	Stage          string
	CandA, CandB   int
	ShareA, ShareB float64
	Delta          float64
	OverThreshold  bool
}

// Diff is the comparison result.
type Diff struct {
	Stages        []StageDelta
	WinnerChanged bool
	HandlerA      string
	HandlerB      string
}

// Drifted reports whether anything exceeded the threshold.
func (d Diff) Drifted() bool {
	if d.WinnerChanged {
		return true
	}
	for _, s := range d.Stages {
		if s.OverThreshold {
			return true
		}
	}
	return false
}

// diff compares the two aggregate funnels stage by stage (union of stage
// names, in A-then-B first-seen order) and the winning handlers.
func diff(a, b core.RunFunnelReport, threshold float64) Diff {
	shareA := stageShares(a.Total)
	shareB := stageShares(b.Total)
	var d Diff
	for _, name := range stageOrder(a.Total, b.Total) {
		sa, sb := shareA[name], shareB[name]
		delta := sb.share - sa.share
		d.Stages = append(d.Stages, StageDelta{
			Stage:         name,
			CandA:         sa.candidates,
			CandB:         sb.candidates,
			ShareA:        sa.share,
			ShareB:        sb.share,
			Delta:         delta,
			OverThreshold: math.Abs(delta) > threshold,
		})
	}
	d.HandlerA, d.HandlerB = a.Handler, b.Handler
	d.WinnerChanged = a.Handler != b.Handler && (a.Handler != "" || b.Handler != "")
	return d
}

type stageShare struct {
	candidates int
	share      float64
}

// stageShares indexes a funnel's stage rows by name.
func stageShares(f core.FunnelReport) map[string]stageShare {
	out := make(map[string]stageShare, len(f.Stages))
	for _, s := range f.Stages {
		out[s.Stage] = stageShare{candidates: s.Candidates, share: s.Share}
	}
	return out
}

// stageOrder unions the two reports' stage names, preserving cascade order.
func stageOrder(a, b core.FunnelReport) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range []core.FunnelReport{a, b} {
		for _, s := range f.Stages {
			if !seen[s.Stage] {
				seen[s.Stage] = true
				out = append(out, s.Stage)
			}
		}
	}
	return out
}

// printDiff renders the comparison table and the drift verdict.
func printDiff(w io.Writer, pathA, pathB string, a, b core.RunFunnelReport, d Diff) {
	fmt.Fprintf(w, "A: %s (%d enumerated)\nB: %s (%d enumerated)\n\n",
		pathA, a.Total.Enumerated, pathB, b.Total.Enumerated)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tA cand\tA share\tB cand\tB share\tdelta\t")
	for _, s := range d.Stages {
		flag := ""
		if s.OverThreshold {
			flag = "DRIFT"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%d\t%.1f%%\t%+.1fpp\t%s\n",
			s.Stage, s.CandA, 100*s.ShareA, s.CandB, 100*s.ShareB, 100*s.Delta, flag)
	}
	tw.Flush()
	if d.WinnerChanged {
		fmt.Fprintf(w, "\nWINNER CHANGED:\n  A: %s\n  B: %s\n", orNone(d.HandlerA), orNone(d.HandlerB))
	} else if d.HandlerA != "" {
		fmt.Fprintf(w, "\nwinner unchanged: %s\n", d.HandlerA)
	}
	if d.Drifted() {
		fmt.Fprintln(w, "\nresult: DRIFT")
	} else {
		fmt.Fprintln(w, "\nresult: no drift")
	}
}

// orNone renders an empty handler as "(none)".
func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
