// Command experiments regenerates the paper's evaluation tables and
// figures from scratch: it simulates the testbed, analyzes the captures,
// and runs the synthesis/classification pipelines.
//
// Usage:
//
//	experiments [-quick] [-seed 1] <experiment> [args]
//
// Experiments:
//
//	table2 [cca ...]    synthesized vs fine-tuned handlers (Table 2)
//	table3              classifier outputs (Table 3)
//	table4 [cca ...]    fine-tuned bucket ranks per iteration (Table 4)
//	fig3                distance-metric error tolerance (Figure 3)
//	fig4                BBR pulse case study (Figure 4)
//	fig5                HTCP inflection case study (Figure 5)
//	fig6                DSL-input impact on student CCAs (Figure 6)
//	search-efficiency   §6.1 Reno search accounting
//	ablation [cca]      design-choice ablations (metric, buckets, segments, pool)
//	artifacts [dir]     write plot-ready CSVs for figures 3-5 (default: artifacts/)
//	all                 everything above (except ablation and artifacts)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/replay"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced trace volume and search budget")
		seed  = flag.Int64("seed", 1, "random seed")
		jobs  = flag.Int("jobs", 1, "concurrent synthesis runs (table2 rows)")
	)
	c := cli.Register("experiments", flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 && !c.ShowVersion() {
		c.UsageExit("no experiment named (table2|table3|...)")
	}
	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	scale.Seed = *seed

	reg, done := c.Setup()
	scale.Obs = reg
	replay.Observe(reg)
	dist.Observe(reg)
	dsl.Observe(reg)

	// SIGINT/SIGTERM cancel in-flight synthesis runs gracefully: partial
	// results already computed are still printed and the run report (via
	// done()) is still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	scale.Ctx = ctx

	name := flag.Arg(0)
	args := flag.Args()[1:]
	runErr := run(name, args, scale, *jobs)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted — results above are best-so-far")
	}
	c.Finish(runErr, done)
}

func run(name string, args []string, scale experiments.Scale, jobs int) error {
	start := time.Now()
	defer func() { fmt.Printf("\n[%s completed in %v]\n", name, time.Since(start).Round(time.Second)) }()
	switch name {
	case "table2":
		ccas := args
		if len(ccas) == 0 {
			ccas = experiments.Table2CCAs()
		}
		rows, err := runTable2(ccas, scale, jobs)
		if err != nil {
			return err
		}
		fmt.Println("\nfull table:")
		fmt.Print(experiments.FormatTable2(rows))
	case "table3":
		rows, err := experiments.Table3(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
	case "table4":
		var ccas []string
		if len(args) > 0 {
			ccas = args
		}
		rows, err := experiments.Table4(ccas, scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
	case "fig3":
		points, err := experiments.Fig3(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig3(experiments.SummarizeFig3(points)))
	case "fig4":
		r, err := experiments.Fig4(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig4(r))
	case "fig5":
		r, err := experiments.Fig5(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig5(r))
	case "fig6":
		var students []string
		if len(args) > 0 {
			students = args
		}
		rows, err := experiments.Fig6(scale, students)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig6(rows))
	case "search-efficiency":
		r, err := experiments.Efficiency(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatEfficiency(r))
	case "ablation":
		cca := "reno"
		if len(args) > 0 {
			cca = args[0]
		}
		rows, err := experiments.Ablation(cca, scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation(cca, rows))
	case "artifacts":
		dir := "artifacts"
		if len(args) > 0 {
			dir = args[0]
		}
		if err := experiments.WriteFigureArtifacts(dir, scale); err != nil {
			return err
		}
		fmt.Printf("wrote figure CSVs to %s/\n", dir)
	case "all":
		for _, sub := range []string{
			"table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6",
			"search-efficiency",
		} {
			fmt.Printf("\n===== %s =====\n", sub)
			if err := run(sub, nil, scale, jobs); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// runTable2 produces Table 2's rows, streaming each as it completes. Each
// CCA is an independent synthesis run that can take minutes at full scale;
// with jobs > 1 up to that many run concurrently (the simulated datasets
// are cached per-CCA and every run uses its own trace, so rows are
// identical to a sequential run — only the streaming order varies). All
// per-row output funnels through one obs.LineSink so concurrent rows never
// interleave mid-block.
func runTable2(ccas []string, scale experiments.Scale, jobs int) ([]experiments.Table2Row, error) {
	if jobs < 1 {
		jobs = 1
	}
	rows := make([][]experiments.Table2Row, len(ccas))
	errs := make([]error, len(ccas))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	sink := obs.NewLineSink(os.Stdout)
	for i, cca := range ccas {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, cca string) {
			defer wg.Done()
			defer func() { <-sem }()
			rs, err := experiments.Table2([]string{cca}, scale, nil)
			rows[i], errs[i] = rs, err
			if err == nil && len(rs) > 0 {
				sink.Print(experiments.FormatTable2(rs[len(rs)-1:]))
			}
		}(i, cca)
	}
	wg.Wait()
	var out []experiments.Table2Row
	for i := range ccas {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, rows[i]...)
	}
	return out, nil
}
