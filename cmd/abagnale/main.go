// Command abagnale runs the synthesis pipeline on collected pcap traces:
// it reverse-engineers a succinct cwnd-on-ACK handler expression whose
// simulated behavior matches the traces (the end-to-end flow of Figure 1).
//
// Usage:
//
//	abagnale -dsl vegas traces/*.pcap
//	abagnale -dsl reno -budget 50000 -metric dtw -seed 1 traces/reno-*.pcap
//	abagnale -dsl cubic -v -metrics-json run-report.json traces/cubic-*.pcap
//
// Without -dsl the tool requires -hint-cca to look up the family mapping,
// or defaults to the vegas DSL (the broadest).
//
// Batch mode (-dir or -glob) synthesizes one handler per pcap file
// instead of pooling all segments into a single search: the traces share
// one compiled sketch corpus and one CPU gate (at most -jobs traces in
// flight, never more scoring workers than cores overall), and the tool
// emits an aggregate JSON report — per-trace best handler, distance,
// timing, and the corpus cache counters — to -report (default stdout).
//
//	abagnale -dsl reno -dir traces/ -jobs 4 -report batch.json
//	abagnale -dsl reno -glob 'traces/cubic-*.pcap' -budget 20000
//
// Observability: -v streams live search progress to stderr, -events writes
// the span/metric stream as JSONL, -metrics-json writes the end-of-run
// report (counters, wall-clock per phase, per-iteration bucket ranks), and
// -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	var (
		dslName = flag.String("dsl", "", "sub-DSL to search (reno|cubic|delay|vegas)")
		hintCCA = flag.String("hint-cca", "", "pick the sub-DSL from this CCA's family")
		metric  = flag.String("metric", "dtw", "distance metric (dtw|euclidean|manhattan|frechet)")
		budget  = flag.Int("budget", 120000, "max concrete handlers to score")
		minSeg  = flag.Int("min-segment", 16, "minimum ACK samples per trace segment")
		seed    = flag.Int64("seed", 1, "random seed")
		dir     = flag.String("dir", "", "batch mode: synthesize one handler per *.pcap in this directory")
		glob    = flag.String("glob", "", "batch mode: synthesize one handler per file matching this pattern")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "batch mode: concurrent trace jobs")
		report  = flag.String("report", "", "batch mode: write the aggregate JSON report here (default stdout)")
		of      obs.Flags
	)
	of.Register(flag.CommandLine)
	flag.Parse()
	batch := *dir != "" || *glob != ""
	if flag.NArg() == 0 && !batch {
		fmt.Fprintln(os.Stderr, "abagnale: no pcap files given")
		flag.Usage()
		os.Exit(2)
	}
	reg, done, err := of.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "abagnale:", err)
		os.Exit(1)
	}
	// Route the process-wide replay/metric/VM instruments to this run.
	replay.Observe(reg)
	dist.Observe(reg)
	dsl.Observe(reg)
	// SIGINT/SIGTERM cancel the search gracefully: the best handler found
	// so far is still printed and the run report (via done()) still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var runErr error
	if batch {
		runErr = runBatch(ctx, *dslName, *hintCCA, *metric, *budget, *minSeg, *seed,
			*dir, *glob, *jobs, *report, reg, flag.Args())
	} else {
		runErr = run(ctx, *dslName, *hintCCA, *metric, *budget, *minSeg, *seed, reg, flag.Args())
	}
	if err := done(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "abagnale:", runErr)
		os.Exit(1)
	}
}

// pickDSL resolves the sub-DSL and metric from the flags.
func pickDSL(dslName, hintCCA, metricName string) (string, *dsl.DSL, dist.Metric, error) {
	if dslName == "" {
		if hintCCA != "" {
			dslName = expr.DSLHint(hintCCA)
		} else {
			dslName = "vegas"
		}
	}
	d, err := dsl.Named(dslName)
	if err != nil {
		return "", nil, nil, err
	}
	m, err := dist.ByName(metricName)
	if err != nil {
		return "", nil, nil, err
	}
	return dslName, d, m, nil
}

func run(ctx context.Context, dslName, hintCCA, metricName string, budget, minSeg int, seed int64, reg *obs.Registry, files []string) error {
	dslName, d, m, err := pickDSL(dslName, hintCCA, metricName)
	if err != nil {
		return err
	}

	var segs []*trace.Segment
	asp := reg.StartSpan("abagnale.analyze")
	x := trace.NewExtractor()
	for _, f := range files {
		tr, err := x.AnalyzeFile(f)
		if err != nil {
			return err
		}
		ss := tr.Split(minSeg)
		fmt.Printf("%s: %d ACK samples, %d losses, %d segments\n",
			f, len(tr.Samples), len(tr.Losses), len(ss))
		segs = append(segs, ss...)
	}
	asp.End()
	if len(segs) == 0 {
		return fmt.Errorf("no usable trace segments (try lowering -min-segment)")
	}
	reg.Progressf("searching %s DSL over %d segments (budget %d handlers)", dslName, len(segs), budget)

	start := time.Now()
	res, err := core.Synthesize(ctx, segs, core.Options{
		DSL:         d,
		Metric:      m,
		MaxHandlers: budget,
		Seed:        seed,
		Obs:         reg,
	})
	if err != nil {
		return err
	}
	if res.Stats.Interrupted {
		fmt.Println("\ninterrupted — reporting best handler found so far")
	}
	handler := dsl.Simplify(res.Handler)
	fmt.Printf("\nsynthesized handler (%s-DSL, %s distance, %v):\n  cwnd <- %s\n",
		dslName, metricName, time.Since(start).Round(time.Millisecond), handler)
	fmt.Printf("summed distance over %d segments: %.2f\n", len(segs), res.Distance)
	fmt.Printf("search: %d handlers from %d sketches across %d buckets, %d iterations\n",
		res.Stats.HandlersScored, res.Stats.SketchesScored,
		res.Stats.SpaceBuckets, len(res.Stats.Iterations))
	if res.Stats.BudgetExhausted {
		fmt.Println("note: handler budget exhausted; result is best-so-far (paper's timeout behavior)")
	}
	reg.Record("abagnale.result", map[string]any{
		"dsl":      dslName,
		"metric":   metricName,
		"handler":  handler.String(),
		"distance": res.Distance,
		"segments": len(segs),
	})
	return nil
}

// batchFiles collects the batch input set: -dir's *.pcap files, -glob's
// matches, and any positional arguments, sorted and deduplicated so the
// report order is stable.
func batchFiles(dir, glob string, args []string) ([]string, error) {
	var files []string
	if dir != "" {
		m, err := filepath.Glob(filepath.Join(dir, "*.pcap"))
		if err != nil {
			return nil, err
		}
		files = append(files, m...)
	}
	if glob != "" {
		m, err := filepath.Glob(glob)
		if err != nil {
			return nil, fmt.Errorf("bad -glob pattern: %w", err)
		}
		files = append(files, m...)
	}
	files = append(files, args...)
	sort.Strings(files)
	files = slicesCompact(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("batch mode: no pcap files matched")
	}
	return files, nil
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// runBatch is the -dir/-glob mode: one synthesis per pcap, all sharing a
// compiled sketch corpus and one CPU gate, plus an aggregate JSON report.
func runBatch(ctx context.Context, dslName, hintCCA, metricName string, budget, minSeg int, seed int64, dir, glob string, jobs int, reportPath string, reg *obs.Registry, args []string) error {
	dslName, d, m, err := pickDSL(dslName, hintCCA, metricName)
	if err != nil {
		return err
	}
	files, err := batchFiles(dir, glob, args)
	if err != nil {
		return err
	}

	// Extraction is I/O-bound and reuses one Extractor's buffers serially;
	// the parallelism budget is saved for scoring.
	asp := reg.StartSpan("abagnale.analyze")
	x := trace.NewExtractor()
	var batch []corpus.Job
	for _, f := range files {
		tr, err := x.AnalyzeFile(f)
		if err != nil {
			return err
		}
		segs := tr.Split(minSeg)
		fmt.Fprintf(os.Stderr, "%s: %d ACK samples, %d losses, %d segments\n",
			f, len(tr.Samples), len(tr.Losses), len(segs))
		if len(segs) == 0 {
			fmt.Fprintf(os.Stderr, "%s: skipped — no usable segments (try lowering -min-segment)\n", f)
			continue
		}
		batch = append(batch, corpus.Job{Name: f, Segments: segs})
	}
	asp.End()
	if len(batch) == 0 {
		return fmt.Errorf("batch mode: no usable trace segments in any input")
	}
	reg.Progressf("batch: %d traces, %d jobs, %s DSL (budget %d handlers each)",
		len(batch), jobs, dslName, budget)

	res, err := corpus.Run(ctx, batch, corpus.RunOptions{
		Jobs: jobs,
		Core: core.Options{
			DSL:         d,
			Metric:      m,
			MaxHandlers: budget,
			Seed:        seed,
		},
		Obs: reg,
	})
	if err != nil {
		return err
	}
	for _, t := range res.Traces {
		if t.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, t.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: cwnd <- %s  (distance %.2f, %v)\n",
			t.Name, t.Handler, t.Distance, t.Duration.Round(time.Millisecond))
	}
	if res.Interrupted {
		fmt.Fprintln(os.Stderr, "interrupted — per-trace rows hold best-so-far")
	}

	rep := res.Report(jobs)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if reportPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(reportPath, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch report written to %s (%d traces, %.1fs wall)\n",
		reportPath, len(rep.Traces), rep.WallSec)
	return nil
}
