// Command abagnale runs the synthesis pipeline on collected pcap traces:
// it reverse-engineers a succinct cwnd-on-ACK handler expression whose
// simulated behavior matches the traces (the end-to-end flow of Figure 1).
//
// Usage:
//
//	abagnale -dsl vegas traces/*.pcap
//	abagnale -dsl reno -budget 50000 -metric dtw -seed 1 traces/reno-*.pcap
//	abagnale -dsl cubic -v -metrics-json run-report.json traces/cubic-*.pcap
//
// Without -dsl the tool requires -hint-cca to look up the family mapping,
// or defaults to the vegas DSL (the broadest).
//
// Observability: -v streams live search progress to stderr, -events writes
// the span/metric stream as JSONL, -metrics-json writes the end-of-run
// report (counters, wall-clock per phase, per-iteration bucket ranks), and
// -cpuprofile/-memprofile capture pprof profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	var (
		dslName = flag.String("dsl", "", "sub-DSL to search (reno|cubic|delay|vegas)")
		hintCCA = flag.String("hint-cca", "", "pick the sub-DSL from this CCA's family")
		metric  = flag.String("metric", "dtw", "distance metric (dtw|euclidean|manhattan|frechet)")
		budget  = flag.Int("budget", 120000, "max concrete handlers to score")
		minSeg  = flag.Int("min-segment", 16, "minimum ACK samples per trace segment")
		seed    = flag.Int64("seed", 1, "random seed")
		of      obs.Flags
	)
	of.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "abagnale: no pcap files given")
		flag.Usage()
		os.Exit(2)
	}
	reg, done, err := of.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "abagnale:", err)
		os.Exit(1)
	}
	// Route the process-wide replay/metric/VM instruments to this run.
	replay.Observe(reg)
	dist.Observe(reg)
	dsl.Observe(reg)
	// SIGINT/SIGTERM cancel the search gracefully: the best handler found
	// so far is still printed and the run report (via done()) still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runErr := run(ctx, *dslName, *hintCCA, *metric, *budget, *minSeg, *seed, reg, flag.Args())
	if err := done(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "abagnale:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, dslName, hintCCA, metricName string, budget, minSeg int, seed int64, reg *obs.Registry, files []string) error {
	if dslName == "" {
		if hintCCA != "" {
			dslName = expr.DSLHint(hintCCA)
		} else {
			dslName = "vegas"
		}
	}
	d, err := dsl.Named(dslName)
	if err != nil {
		return err
	}
	m, err := dist.ByName(metricName)
	if err != nil {
		return err
	}

	var segs []*trace.Segment
	asp := reg.StartSpan("abagnale.analyze")
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		tr, err := trace.AnalyzeBytes(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		ss := tr.Split(minSeg)
		fmt.Printf("%s: %d ACK samples, %d losses, %d segments\n",
			f, len(tr.Samples), len(tr.Losses), len(ss))
		segs = append(segs, ss...)
	}
	asp.End()
	if len(segs) == 0 {
		return fmt.Errorf("no usable trace segments (try lowering -min-segment)")
	}
	reg.Progressf("searching %s DSL over %d segments (budget %d handlers)", dslName, len(segs), budget)

	start := time.Now()
	res, err := core.Synthesize(ctx, segs, core.Options{
		DSL:         d,
		Metric:      m,
		MaxHandlers: budget,
		Seed:        seed,
		Obs:         reg,
	})
	if err != nil {
		return err
	}
	if res.Stats.Interrupted {
		fmt.Println("\ninterrupted — reporting best handler found so far")
	}
	handler := dsl.Simplify(res.Handler)
	fmt.Printf("\nsynthesized handler (%s-DSL, %s distance, %v):\n  cwnd <- %s\n",
		dslName, metricName, time.Since(start).Round(time.Millisecond), handler)
	fmt.Printf("summed distance over %d segments: %.2f\n", len(segs), res.Distance)
	fmt.Printf("search: %d handlers from %d sketches across %d buckets, %d iterations\n",
		res.Stats.HandlersScored, res.Stats.SketchesScored,
		res.Stats.SpaceBuckets, len(res.Stats.Iterations))
	if res.Stats.BudgetExhausted {
		fmt.Println("note: handler budget exhausted; result is best-so-far (paper's timeout behavior)")
	}
	reg.Record("abagnale.result", map[string]any{
		"dsl":      dslName,
		"metric":   metricName,
		"handler":  handler.String(),
		"distance": res.Distance,
		"segments": len(segs),
	})
	return nil
}
