// Command abagnale runs the synthesis pipeline on collected pcap traces:
// it reverse-engineers a succinct cwnd-on-ACK handler expression whose
// simulated behavior matches the traces (the end-to-end flow of Figure 1).
//
// Usage:
//
//	abagnale -dsl vegas traces/*.pcap
//	abagnale -dsl reno -budget 50000 -metric dtw -seed 1 traces/reno-*.pcap
//	abagnale -dsl cubic -v -metrics-json run-report.json traces/cubic-*.pcap
//
// Without -dsl the tool requires -hint-cca to look up the family mapping,
// or defaults to the vegas DSL (the broadest).
//
// Batch mode (-dir or -glob) synthesizes one handler per pcap file
// instead of pooling all segments into a single search: the traces share
// one compiled sketch corpus and one CPU gate (at most -jobs traces in
// flight, never more scoring workers than cores overall), and the tool
// emits an aggregate JSON report — per-trace best handler, distance,
// timing, and the corpus cache counters — to -report (default stdout).
//
//	abagnale -dsl reno -dir traces/ -jobs 4 -report batch.json
//	abagnale -dsl reno -glob 'traces/cubic-*.pcap' -budget 20000
//
// Observability: -v streams live search progress to stderr, -events writes
// the span/metric stream as JSONL, -metrics-json writes the end-of-run
// report (counters, wall-clock per phase, per-iteration bucket ranks),
// -serve hosts the live observability server (/metrics, /healthz, /runs,
// /runs/{name}/funnel, /events, /flight, /debug/pprof), -trace-out exports
// a Perfetto/Chrome trace-event timeline, -explain prints the per-bucket
// convergence and pruning-funnel tables, -ledger dumps a deterministic
// sample of scored candidates as JSONL, -funnel writes the run's funnel
// report (the funneldiff input), -version prints build info, and
// -cpuprofile/-memprofile capture pprof profiles.
// SIGQUIT (ctrl-\) dumps the flight recorder to stderr without stopping
// the run; a failed search dumps its tail automatically.
//
// Daemon mode (-daemon) turns the process into the synthesis service:
// the versioned job API (/api/v1) is mounted on -serve's address next to
// the observability endpoints, -jobs sizes the worker pool, -snapshots
// persists warm corpora across restarts, and -dsl names corpora to
// prewarm. cmd/abagnaled is the standalone daemon with client
// subcommands; both run the same service.RunDaemon loop.
//
//	abagnale -daemon -serve :8080 -dsl reno -snapshots corpora/
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/trace"
)

func main() {
	// A copy of this binary exec'd by -shard-workers detours into the
	// worker loop here, before any flag parsing.
	shard.MaybeRunWorker()
	var (
		dslName = flag.String("dsl", "", "sub-DSL to search (reno|cubic|delay|vegas)")
		hintCCA = flag.String("hint-cca", "", "pick the sub-DSL from this CCA's family")
		metric  = flag.String("metric", "dtw", "distance metric (dtw|euclidean|manhattan|frechet)")
		budget  = flag.Int("budget", 120000, "max concrete handlers to score")
		minSeg  = flag.Int("min-segment", 16, "minimum ACK samples per trace segment")
		seed    = flag.Int64("seed", 1, "random seed")
		dir     = flag.String("dir", "", "batch mode: synthesize one handler per *.pcap in this directory")
		glob    = flag.String("glob", "", "batch mode: synthesize one handler per file matching this pattern")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "batch mode: concurrent trace jobs")
		report  = flag.String("report", "", "batch mode: write the aggregate JSON report here (default stdout)")
		explain = flag.Bool("explain", false, "print the per-bucket convergence and pruning-funnel tables after the search")
		ledger  = flag.String("ledger", "", "write a deterministic sampled candidate ledger (JSONL) here")
		funnel  = flag.String("funnel", "", "write the run's pruning-funnel report (JSON, funneldiff input) here")
		daemon  = flag.Bool("daemon", false, "run as a synthesis daemon (job API on -serve's address; see abagnaled)")
		snaps   = flag.String("snapshots", "", "daemon mode: corpus snapshot directory (empty disables warm restarts)")

		shardWorkers = flag.Int("shard-workers", 0, "shard scoring across N spawned local worker processes")
		shardWait    = flag.Int("shard-wait", 0, "also wait for N joined workers (abagnaled -worker -join) before searching")
		shardListen  = flag.String("shard-listen", "", "shard coordinator listen address (default 127.0.0.1, ephemeral port)")
		shardSnaps   = flag.String("shard-snapshots", "", "shared corpus snapshot dir shard workers warm-start from")
		shardPrewarm = flag.Bool("shard-prewarm", false, "materialize and snapshot the sketch space into -shard-snapshots before spawning workers")
		shardBeat    = flag.Duration("shard-heartbeat", 0, "worker heartbeat cadence (default 500ms; negative disables)")
		shardPM      = flag.String("shard-postmortems", "", "write a JSONL postmortem bundle per worker lost mid-run into this directory")
		fleet        = flag.Bool("fleet", false, "print the per-worker fleet telemetry table after a sharded run")
		bucketCap    = flag.Int("bucket-cap", 0, "max sketches materialized per bucket (default: core's)")
		scanBudget   = flag.Int("scan-budget", 0, "max candidate constructions per bucket enumeration (default: core's)")
	)
	c := cli.Register("abagnale", flag.CommandLine)
	flag.Parse()
	batch := *dir != "" || *glob != ""
	if *daemon {
		// Daemon mode owns the observability server (the job API rides the
		// same mux), so it bypasses the common Setup entirely.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := service.RunDaemon(ctx, service.Config{
			Workers:     *jobs,
			SnapshotDir: *snaps,
		}, service.DaemonOptions{
			Listen:  c.Obs.Serve,
			Prewarm: service.ParsePrewarm(*dslName),
			Verbose: c.Obs.Verbose,
		})
		if err != nil {
			c.Fatal(err)
		}
		return
	}
	if flag.NArg() == 0 && !batch && !c.ShowVersion() {
		c.UsageExit("no pcap files given")
	}
	reg, done := c.Setup()
	// Route the process-wide replay/metric/VM instruments to this run.
	replay.Observe(reg)
	dist.Observe(reg)
	dsl.Observe(reg)
	// SIGINT/SIGTERM cancel the search gracefully: the best handler found
	// so far is still printed and the run report (via done()) still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sh := shardFlags{
		workers: *shardWorkers, wait: *shardWait, listen: *shardListen,
		snaps: *shardSnaps, prewarm: *shardPrewarm,
		heartbeat: *shardBeat, postmortems: *shardPM, fleet: *fleet,
		bucketCap: *bucketCap, scanBudget: *scanBudget,
	}
	var runErr error
	if batch {
		if *ledger != "" || *funnel != "" {
			fmt.Fprintln(os.Stderr, "abagnale: -ledger/-funnel apply to single-trace runs; ignored in batch mode")
		}
		runErr = runBatch(ctx, *dslName, *hintCCA, *metric, *budget, *minSeg, *seed,
			*dir, *glob, *jobs, *report, *explain, sh, reg, flag.Args())
	} else {
		runErr = run(ctx, *dslName, *hintCCA, *metric, *budget, *minSeg, *seed,
			*explain, *ledger, *funnel, sh, reg, flag.Args())
	}
	if runErr != nil {
		// A failed search dumps the flight recorder's tail — the last thing
		// the pipeline was doing when it went wrong.
		if tail := reg.Flight().Tail(64); len(tail) > 0 {
			fmt.Fprintln(os.Stderr, "abagnale: flight recorder tail (newest last):")
			enc := json.NewEncoder(os.Stderr)
			for _, ev := range tail {
				_ = enc.Encode(ev)
			}
		}
	}
	c.Finish(runErr, done)
}

// shardFlags bundles the -shard-* and corpus-sizing flags.
type shardFlags struct {
	workers, wait         int
	listen, snaps         string
	prewarm               bool
	heartbeat             time.Duration
	postmortems           string
	fleet                 bool
	bucketCap, scanBudget int
}

// active reports whether the run is sharded at all (spawned or external
// workers).
func (s shardFlags) active() bool { return s.workers > 0 || s.wait > 0 }

// options renders the flags as shard.Options around the core config.
func (s shardFlags) options(o core.Options, reg *obs.Registry) shard.Options {
	return shard.Options{
		Workers:       s.workers,
		WaitWorkers:   s.wait,
		Listen:        s.listen,
		SnapshotDir:   s.snaps,
		Prewarm:       s.prewarm,
		Heartbeat:     s.heartbeat,
		PostmortemDir: s.postmortems,
		Core:          o,
		Obs:           reg,
	}
}

// printShardSummary writes the per-worker accounting to stderr (stdout is
// reserved for results and reports); with -fleet it also renders the
// cluster telemetry table.
func (s shardFlags) printShardSummary(rep *shard.Report) {
	for _, w := range rep.Workers {
		state := ""
		if w.Lost {
			state = "  [lost mid-run]"
		}
		fmt.Fprintf(os.Stderr, "shard: worker %d (pid %d): %d leases (%d stolen), %d handlers, %d cutoffs applied%s\n",
			w.ID, w.PID, w.Leases, w.Stolen, w.Handlers, w.Applied, state)
	}
	fmt.Fprintf(os.Stderr, "shard: %d leases issued, %d stolen, %d reissued; %d cutoff broadcasts (%d applied)\n",
		rep.Counters["shard.leases_issued"], rep.Counters["shard.leases_stolen"],
		rep.Counters["shard.leases_reissued"], rep.Counters["shard.cutoff_broadcasts"],
		rep.Counters["shard.cutoff_applied"])
	if s.fleet {
		printFleet(rep)
	}
}

// printFleet renders the cluster snapshot as the per-worker telemetry
// table: the same data /cluster serves live, at end-of-run.
func printFleet(rep *shard.Report) {
	if rep.Cluster == nil {
		fmt.Fprintln(os.Stderr, "fleet: no cluster snapshot in report")
		return
	}
	fmt.Fprintln(os.Stderr, "\nfleet: per-worker telemetry")
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  WORKER\tSTATE\tLAST BEAT\tRTT\tLEASES\tSTOLEN\tREISSUED\tCANDIDATES\tCAND/S\tENUMERATION")
	for _, w := range rep.Cluster.Workers {
		state := "up"
		if w.Lost {
			state = "lost"
		} else if !w.Connected {
			state = "done"
		}
		beat := "never"
		if w.LastBeatSec >= 0 {
			beat = fmt.Sprintf("%.1fs ago", w.LastBeatSec)
		}
		fmt.Fprintf(tw, "  %02d (pid %d)\t%s\t%s\t%.2fms\t%d\t%d\t%d\t%d\t%.0f\t%s\n",
			w.ID, w.PID, state, beat, w.RTTMs, w.Leases, w.Stolen, w.Reissued,
			w.Handlers, w.CandidatesPerSec, w.Enumeration)
	}
	tw.Flush()
}

// pickDSL resolves the sub-DSL and metric from the flags.
func pickDSL(dslName, hintCCA, metricName string) (string, *dsl.DSL, dist.Metric, error) {
	if dslName == "" {
		if hintCCA != "" {
			dslName = expr.DSLHint(hintCCA)
		} else {
			dslName = "vegas"
		}
	}
	d, err := dsl.Named(dslName)
	if err != nil {
		return "", nil, nil, err
	}
	m, err := dist.ByName(metricName)
	if err != nil {
		return "", nil, nil, err
	}
	return dslName, d, m, nil
}

func run(ctx context.Context, dslName, hintCCA, metricName string, budget, minSeg int, seed int64, explain bool, ledgerPath, funnelPath string, sh shardFlags, reg *obs.Registry, files []string) error {
	dslName, d, m, err := pickDSL(dslName, hintCCA, metricName)
	if err != nil {
		return err
	}

	var segs []*trace.Segment
	asp := reg.StartSpan("abagnale.analyze")
	x := trace.NewExtractor()
	for _, f := range files {
		tr, err := x.AnalyzeFile(f)
		if err != nil {
			return err
		}
		ss := tr.Split(minSeg)
		fmt.Printf("%s: %d ACK samples, %d losses, %d segments\n",
			f, len(tr.Samples), len(tr.Losses), len(ss))
		segs = append(segs, ss...)
	}
	asp.End()
	if len(segs) == 0 {
		return fmt.Errorf("no usable trace segments (try lowering -min-segment)")
	}
	reg.Progressf("searching %s DSL over %d segments (budget %d handlers)", dslName, len(segs), budget)

	var led *replay.Ledger
	if ledgerPath != "" {
		led = replay.NewLedger(0, seed)
	}
	start := time.Now()
	copts := core.Options{
		DSL:         d,
		Metric:      m,
		MaxHandlers: budget,
		BucketCap:   sh.bucketCap,
		ScanBudget:  sh.scanBudget,
		Seed:        seed,
		Ledger:      led,
		Obs:         reg,
	}
	var res *core.Result
	if sh.active() {
		reg.Progressf("sharding across %d spawned workers (waiting for %d)", sh.workers, max(sh.wait, sh.workers))
		var srep *shard.Report
		res, srep, err = shard.Synthesize(ctx, segs, sh.options(copts, reg))
		if srep != nil {
			sh.printShardSummary(srep)
		}
	} else {
		res, err = core.Synthesize(ctx, segs, copts)
	}
	if err != nil {
		return err
	}
	if res.Stats.Interrupted {
		fmt.Println("\ninterrupted — reporting best handler found so far")
	}
	handler := dsl.Simplify(res.Handler)
	fmt.Printf("\nsynthesized handler (%s-DSL, %s distance, %v):\n  cwnd <- %s\n",
		dslName, metricName, time.Since(start).Round(time.Millisecond), handler)
	fmt.Printf("summed distance over %d segments: %.2f\n", len(segs), res.Distance)
	fmt.Printf("search: %d handlers from %d sketches across %d buckets, %d iterations\n",
		res.Stats.HandlersScored, res.Stats.SketchesScored,
		res.Stats.SpaceBuckets, len(res.Stats.Iterations))
	if res.Stats.BudgetExhausted {
		fmt.Println("note: handler budget exhausted; result is best-so-far (paper's timeout behavior)")
	}
	if explain {
		fmt.Println("\nbucket convergence:")
		printExplain(os.Stdout, res.Stats.Buckets)
		fmt.Println("\npruning funnel:")
		printFunnel(os.Stdout, res.Stats)
	}
	if led != nil {
		if err := writeLedger(ledgerPath, led); err != nil {
			return err
		}
		fmt.Printf("candidate ledger: %d sampled candidates written to %s\n", led.Len(), ledgerPath)
	}
	if funnelPath != "" {
		rep := core.NewRunFunnelReport(firstOf(files), handler.String(), res.Distance, res.Stats)
		if err := writeJSONFile(funnelPath, rep); err != nil {
			return err
		}
		fmt.Printf("funnel report written to %s\n", funnelPath)
	}
	reg.Record("abagnale.result", map[string]any{
		"dsl":      dslName,
		"metric":   metricName,
		"handler":  handler.String(),
		"distance": res.Distance,
		"segments": len(segs),
	})
	return nil
}

// printExplain renders the per-bucket convergence table (-explain): how
// Algorithm 1 split the candidate budget across operator buckets, how hard
// the fast path pruned each one, and how each bucket's best distance moved
// per refinement iteration. Buckets arrive best-first from SearchStats.
func printExplain(w io.Writer, buckets []core.BucketStats) {
	if len(buckets) == 0 {
		fmt.Fprintln(w, "  (no bucket telemetry — search never completed an iteration)")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  rank\tops\titers\tsketches\thandlers\tpruned\tbest\ttrajectory")
	for i, b := range buckets {
		exhausted := ""
		if b.Exhausted {
			exhausted = "*"
		}
		fmt.Fprintf(tw, "  %d\t%s%s\t%d\t%d\t%d\t%.0f%%\t%s\t%s\n",
			i+1, b.Ops, exhausted, b.Iterations, b.SketchesTaken, b.HandlersScored,
			100*b.PruneRate(), fmtDist(b.Best), fmtTrajectory(b.Trajectory))
	}
	tw.Flush()
}

// printFunnel renders the run's aggregate pruning funnel (-explain): for
// each cascade stage, how many enumerated candidates settled there, their
// share, and the DTW-cell cost attribution — cells the stage computed and
// cells its settling saved relative to full passes.
func printFunnel(w io.Writer, stats core.SearchStats) {
	rep := stats.Funnel.Report()
	if rep.Enumerated == 0 {
		fmt.Fprintln(w, "  (no funnel telemetry — search never scored a candidate)")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  stage\tcandidates\tshare\tcells\tcells saved")
	for _, s := range rep.Stages {
		if s.Candidates == 0 && s.Cells == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1f%%\t%d\t%d\n",
			s.Stage, s.Candidates, 100*s.Share, s.Cells, s.CellsSaved)
	}
	fmt.Fprintf(tw, "  total\t%d\t\t\t\n", rep.Enumerated)
	tw.Flush()
	fmt.Fprintf(w, "  new bests: %d\n", rep.NewBest)
}

// writeLedger dumps the sampled candidate ledger as JSONL.
func writeLedger(path string, led *replay.Ledger) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := led.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSONFile writes v as indented JSON.
func writeJSONFile(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// firstOf labels a single-trace run by its first input file.
func firstOf(files []string) string {
	if len(files) == 0 {
		return ""
	}
	return files[0]
}

// fmtDist renders a distance compactly; +Inf (no viable candidate) as "-".
func fmtDist(d float64) string {
	if math.IsInf(d, 0) || math.IsNaN(d) {
		return "-"
	}
	return fmt.Sprintf("%.2f", d)
}

// fmtTrajectory joins the last few per-iteration bests into an arrow chain.
func fmtTrajectory(traj []float64) string {
	const keep = 6
	var b strings.Builder
	if len(traj) > keep {
		b.WriteString("… ")
		traj = traj[len(traj)-keep:]
	}
	for i, d := range traj {
		if i > 0 {
			b.WriteString(" > ")
		}
		b.WriteString(fmtDist(d))
	}
	return b.String()
}

// batchFiles collects the batch input set: -dir's *.pcap files, -glob's
// matches, and any positional arguments, sorted and deduplicated so the
// report order is stable.
func batchFiles(dir, glob string, args []string) ([]string, error) {
	var files []string
	if dir != "" {
		m, err := filepath.Glob(filepath.Join(dir, "*.pcap"))
		if err != nil {
			return nil, err
		}
		files = append(files, m...)
	}
	if glob != "" {
		m, err := filepath.Glob(glob)
		if err != nil {
			return nil, fmt.Errorf("bad -glob pattern: %w", err)
		}
		files = append(files, m...)
	}
	files = append(files, args...)
	sort.Strings(files)
	files = slicesCompact(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("batch mode: no pcap files matched")
	}
	return files, nil
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// runBatch is the -dir/-glob mode: one synthesis per pcap, all sharing a
// compiled sketch corpus and one CPU gate, plus an aggregate JSON report.
func runBatch(ctx context.Context, dslName, hintCCA, metricName string, budget, minSeg int, seed int64, dir, glob string, jobs int, reportPath string, explain bool, sh shardFlags, reg *obs.Registry, args []string) error {
	dslName, d, m, err := pickDSL(dslName, hintCCA, metricName)
	if err != nil {
		return err
	}
	files, err := batchFiles(dir, glob, args)
	if err != nil {
		return err
	}

	// Extraction is I/O-bound and reuses one Extractor's buffers serially;
	// the parallelism budget is saved for scoring.
	asp := reg.StartSpan("abagnale.analyze")
	x := trace.NewExtractor()
	var batch []corpus.Job
	for _, f := range files {
		tr, err := x.AnalyzeFile(f)
		if err != nil {
			return err
		}
		segs := tr.Split(minSeg)
		fmt.Fprintf(os.Stderr, "%s: %d ACK samples, %d losses, %d segments\n",
			f, len(tr.Samples), len(tr.Losses), len(segs))
		if len(segs) == 0 {
			fmt.Fprintf(os.Stderr, "%s: skipped — no usable segments (try lowering -min-segment)\n", f)
			continue
		}
		batch = append(batch, corpus.Job{Name: f, Segments: segs})
	}
	asp.End()
	if len(batch) == 0 {
		return fmt.Errorf("batch mode: no usable trace segments in any input")
	}
	reg.Progressf("batch: %d traces, %d jobs, %s DSL (budget %d handlers each)",
		len(batch), jobs, dslName, budget)

	copts := core.Options{
		DSL:         d,
		Metric:      m,
		MaxHandlers: budget,
		BucketCap:   sh.bucketCap,
		ScanBudget:  sh.scanBudget,
		Seed:        seed,
	}
	var (
		res  *corpus.BatchResult
		srep *shard.Report
	)
	if sh.active() {
		reg.Progressf("sharding %d traces across %d spawned workers (waiting for %d)",
			len(batch), sh.workers, max(sh.wait, sh.workers))
		res, srep, err = shard.Run(ctx, batch, sh.options(copts, reg))
		if srep != nil {
			sh.printShardSummary(srep)
		}
	} else {
		res, err = corpus.Run(ctx, batch, corpus.RunOptions{
			Jobs: jobs,
			Core: copts,
			Obs:  reg,
		})
	}
	if err != nil {
		return err
	}
	for _, t := range res.Traces {
		if t.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, t.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: cwnd <- %s  (distance %.2f, %v)\n",
			t.Name, t.Handler, t.Distance, t.Duration.Round(time.Millisecond))
		if explain {
			// The table goes to stderr with the other per-trace chatter so
			// stdout stays reserved for the JSON report.
			fmt.Fprintf(os.Stderr, "%s: bucket convergence:\n", t.Name)
			printExplain(os.Stderr, t.Stats.Buckets)
			fmt.Fprintf(os.Stderr, "%s: pruning funnel:\n", t.Name)
			printFunnel(os.Stderr, t.Stats)
		}
	}
	if res.Interrupted {
		fmt.Fprintln(os.Stderr, "interrupted — per-trace rows hold best-so-far")
	}

	rep := res.Report(jobs)
	if srep != nil {
		rep.Shard = srep
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if reportPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(reportPath, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "batch report written to %s (%d traces, %.1fs wall)\n",
		reportPath, len(rep.Traces), rep.WallSec)
	return nil
}
