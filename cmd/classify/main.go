// Command classify labels a pcap trace with the nearest known congestion
// control algorithm (the Gordon/CCAnalyzer step of §3.3) and prints the
// sub-DSL Abagnale would search for it.
//
// The reference library is built in-process by simulating the kernel CCAs
// over the testbed grid, so the tool needs the scenario parameters the
// trace was collected under (-rtt, -bw) to compare like with like.
//
// Usage:
//
//	classify -rtt 40ms -bw 10 trace.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/classify"
	"repro/internal/cli"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	var (
		rtt    = flag.Duration("rtt", 40*time.Millisecond, "trace scenario base RTT")
		bwMbps = flag.Float64("bw", 10, "trace scenario bottleneck bandwidth, Mbit/s")
		margin = flag.Float64("margin", 2.5, "Unknown-threshold margin over intra-CCA distance")
		seed   = flag.Int64("seed", 1, "reference library seed")
	)
	c := cli.Register("classify", flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 && !c.ShowVersion() {
		c.UsageExit("no pcap files given")
	}
	reg, done := c.Setup()
	replay.Observe(reg)
	dist.Observe(reg)
	dsl.Observe(reg)
	runErr := run(*rtt, *bwMbps*1e6/8, *margin, *seed, reg, flag.Args())
	c.Finish(runErr, done)
}

func run(rtt time.Duration, bwBps, margin float64, seed int64, reg *obs.Registry, files []string) error {
	scale := experiments.FullScale()
	scale.Seed = seed
	scale.RTTs = []time.Duration{rtt}
	scale.Bandwidths = []float64{bwBps}
	scale.Obs = reg
	fmt.Println("building reference library (kernel CCAs)...")
	cls, err := experiments.BuildClassifier(scale)
	if err != nil {
		return err
	}
	cls.Calibrate(margin)
	key := classify.ConfigKey(int(rtt/time.Millisecond), bwBps)

	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		tr, err := trace.AnalyzeBytes(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		res, err := cls.Classify(key, tr)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s", f, res.Label)
		if res.Unknown && len(res.Nearest) > 0 {
			fmt.Printf(" (closest: %s, %s)", res.Nearest[0].Label, res.Nearest[1].Label)
		}
		fmt.Printf("  [suggested DSL: %s]\n", res.HintDSL())
	}
	return nil
}
