// Command tracegen simulates a congestion control algorithm across the
// testbed grid and writes one pcap capture per scenario — the trace
// collection step of the pipeline (§3.2).
//
// Usage:
//
//	tracegen -cca cubic -out traces/ [-duration 30s] [-jitter 1ms]
//	         [-loss 0.0005] [-seed 1] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cca"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		ccaName  = flag.String("cca", "reno", "congestion control algorithm to trace")
		outDir   = flag.String("out", "traces", "output directory for pcap files")
		duration = flag.Duration("duration", 30*time.Second, "flow duration per scenario")
		jitter   = flag.Duration("jitter", time.Millisecond, "uniform propagation jitter (measurement noise)")
		loss     = flag.Float64("loss", 0.0005, "random loss rate (measurement noise)")
		seed     = flag.Int64("seed", 1, "base random seed")
		list     = flag.Bool("list", false, "list available CCAs and exit")
	)
	c := cli.RegisterVersion("tracegen", flag.CommandLine)
	flag.Parse()
	_, done := c.Setup() // handles -version
	defer func() { _ = done() }()
	if *list {
		fmt.Println(strings.Join(cca.Names(), "\n"))
		return
	}

	scale := experiments.FullScale()
	scale.Duration = *duration
	scale.Jitter = *jitter
	scale.LossRate = *loss
	scale.Seed = *seed

	if err := run(*ccaName, *outDir, scale); err != nil {
		c.Fatal(err)
	}
}

func run(ccaName, outDir string, scale experiments.Scale) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i, cfg := range scale.Grid(ccaName) {
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		raw, err := res.WritePcap()
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-rtt%dms-bw%.0fkbps-%02d.pcap",
			ccaName, cfg.RTT/time.Millisecond, cfg.Bandwidth*8/1000, i)
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d packets, %.2f Mbit/s achieved, %d drops, %d fast-rexmit\n",
			path, len(res.Records),
			res.Stats.Throughput*8/1e6, res.Stats.Drops, res.Stats.FastRetransmits)
	}
	return nil
}
