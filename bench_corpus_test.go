// Corpus-scale benchmarks: the zero-allocation pcap ingestion path and the
// batch synthesis engine versus a sequential loop of standalone runs. Both
// feed the bench-compare baseline; TestBatchMatchesSequential (in
// internal/corpus) pins that the two batch variants return identical
// per-trace results, so the speedup here is pure scheduling and sharing.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dsl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// benchPcapBytes renders a 30-second reno capture as raw pcap file bytes.
func benchPcapBytes(tb testing.TB) []byte {
	tb.Helper()
	res, err := sim.Run(sim.Config{
		CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond,
		Duration: 30 * time.Second, Seed: 11,
	})
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := res.WritePcap()
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// pcapReadPass streams every packet of the capture through the reusable
// record and layer structs, returning the packet count.
func pcapReadPass(tb testing.TB, rd *bytes.Reader, raw []byte, pr *wire.PcapReader, rec *wire.PcapRecord, pkt *wire.Packet) int {
	rd.Reset(raw)
	pr.Reset(rd)
	n := 0
	for {
		if err := pr.NextInto(rec); err != nil {
			break
		}
		if err := wire.DecodePacketLinkInto(pr.LinkType, rec.Data, pkt); err != nil {
			tb.Fatal(err)
		}
		n++
	}
	return n
}

// BenchmarkPcapRead measures streaming pcap ingestion of a 30s capture
// with caller-owned buffers: NextInto + DecodePacketLinkInto. The
// steady-state contract is zero allocations per packet (asserted by
// TestPcapReadZeroAlloc); allocs/op here covers the whole file pass.
func BenchmarkPcapRead(b *testing.B) {
	raw := benchPcapBytes(b)
	rd := bytes.NewReader(raw)
	pr := wire.NewPcapReader(rd)
	var rec wire.PcapRecord
	var pkt wire.Packet
	packets := pcapReadPass(b, rd, raw, pr, &rec, &pkt) // warm the buffers
	if packets == 0 {
		b.Fatal("no packets")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pcapReadPass(b, rd, raw, pr, &rec, &pkt)
	}
	b.ReportMetric(float64(packets), "packets/op")
}

// TestPcapReadZeroAlloc pins the reused-buffer read path's contract: after
// one warm-up pass sizes the buffers, a full-file streaming pass performs
// zero heap allocations.
func TestPcapReadZeroAlloc(t *testing.T) {
	raw := benchPcapBytes(t)
	rd := bytes.NewReader(raw)
	pr := wire.NewPcapReader(rd)
	var rec wire.PcapRecord
	var pkt wire.Packet
	if n := pcapReadPass(t, rd, raw, pr, &rec, &pkt); n == 0 {
		t.Fatal("no packets")
	}
	allocs := testing.AllocsPerRun(3, func() {
		pcapReadPass(t, rd, raw, pr, &rec, &pkt)
	})
	if allocs != 0 {
		t.Errorf("streaming pcap pass allocates %.1f times per file, want 0", allocs)
	}
}

// benchBatchJobs builds eight reno traces under varied network settings —
// the corpus-scale workload of the batch engine benchmarks.
func benchBatchJobs(b *testing.B) []corpus.Job {
	b.Helper()
	var jobs []corpus.Job
	for i := 0; i < 8; i++ {
		res, err := sim.Run(sim.Config{
			CCA:       "reno",
			Bandwidth: float64(5+i) * 1e6 / 8,
			RTT:       time.Duration(25+10*i) * time.Millisecond,
			Duration:  12 * time.Second,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			b.Fatal(err)
		}
		segs := tr.Split(16)
		if len(segs) == 0 {
			b.Fatal("trace produced no segments")
		}
		jobs = append(jobs, corpus.Job{Name: fmt.Sprintf("reno-%d", i), Segments: segs})
	}
	return jobs
}

// benchBatchOpts is the per-trace synthesis configuration both batch
// benchmarks share: a modest handler budget over the broad vegas bucket
// space — the realistic unknown-CCA setting, where per-trace enumeration
// and compilation are a large fraction of the work the corpus amortizes.
func benchBatchOpts() core.Options {
	return core.Options{
		DSL:            dsl.Vegas(),
		InitialSamples: 8,
		MaxHandlers:    1000,
		MaxCompletions: 8,
		ScanBudget:     20000,
		Seed:           1,
	}
}

// BenchmarkBatchSynthesize runs the 8-trace workload through the batch
// engine: one shared compiled sketch corpus, jobs=GOMAXPROCS, one global
// CPU gate. Compare against BenchmarkBatchSequential; per-trace results
// are pinned identical by internal/corpus's determinism test.
func BenchmarkBatchSynthesize(b *testing.B) {
	jobs := benchBatchJobs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := corpus.Run(context.Background(), jobs, corpus.RunOptions{
			Jobs: runtime.GOMAXPROCS(0),
			Core: benchBatchOpts(),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range res.Traces {
			if tr.Err != nil {
				b.Fatal(tr.Err)
			}
		}
		b.ReportMetric(float64(res.Corpus["corpus.sketches_shared"]), "shared/op")
	}
	b.ReportMetric(float64(len(jobs)), "traces/op")
}

// BenchmarkBatchSequential is the pre-corpus baseline: the same 8 traces
// synthesized one after another, each standalone run re-enumerating and
// re-compiling the whole sketch space.
func BenchmarkBatchSequential(b *testing.B) {
	jobs := benchBatchJobs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, err := core.Synthesize(context.Background(), j.Segments, benchBatchOpts()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "traces/op")
}
