# Developer entry points. `make bench` appends to the bench/ directory so
# benchmark trajectories (BENCH_* files) accumulate across PRs and can be
# diffed by future performance work.

GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	@mkdir -p bench
	$(GO) test -bench=. -benchmem -run='^$$' . | tee bench/BENCH_$$(date -u +%Y%m%d-%H%M%S).txt
