# Developer entry points. `make bench` appends to the bench/ directory so
# benchmark trajectories (BENCH_* files) accumulate across PRs and can be
# diffed by future performance work.

GO ?= go

.PHONY: build test race vet bench bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	@mkdir -p bench
	$(GO) test -bench=. -benchmem -run='^$$' . | tee bench/BENCH_$$(date -u +%Y%m%d-%H%M%S).txt

# bench-compare runs the fast component micro-benchmarks (scoring, replay
# VM, DTW, obs, pcap ingestion, batch synthesis), records them as
# bench/BENCH_*.json, and diffs ns/op, B/op, allocs/op, and cells/op
# against the previous snapshot — exiting nonzero when any cost metric
# regresses by more than THRESH (fraction; CI uses a looser value to
# absorb cross-machine noise).
THRESH ?= 0.20
bench-compare:
	@mkdir -p bench
	$(GO) test -bench='ScoreHandler|ReplayProgram|ReplayClosure|DTWDistance|TraceAnalysis|Obs|PcapRead|BatchSynthesize|BatchSequential|EvalSeriesBatch|ShardedSynthesize' -benchmem -run='^$$' . \
		| tee /dev/stderr | $(GO) run ./cmd/benchdiff -record -dir bench -threshold $(THRESH)
