// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each driving the same experiment code as cmd/experiments at
// the quick scale. Run with:
//
//	go test -bench=. -benchmem .
//
// The benchmarks report, via b.ReportMetric, the headline quantity of each
// experiment (distances, ranks, tolerance bands) so a bench run doubles as
// a compact reproduction record.
package repro

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/enum"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchScale returns the reduced experiment scale used by every benchmark.
func benchScale() experiments.Scale {
	return experiments.QuickScale()
}

// BenchmarkTable2RenoFamily regenerates Table 2's Reno row: synthesized vs
// fine-tuned handler distance. The reported metrics are the two distances;
// the paper's shape is synth ~= fine-tuned for the Reno family.
func BenchmarkTable2RenoFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]string{"reno"}, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Err != nil {
			b.Fatal(rows[0].Err)
		}
		b.ReportMetric(rows[0].SynthDistance, "synth-dist")
		b.ReportMetric(rows[0].FineDistance, "fine-dist")
	}
}

// BenchmarkTable2VegasFamily regenerates Table 2's Vegas row: the
// synthesized handler should use the vegas-diff conditional structure.
func BenchmarkTable2VegasFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]string{"vegas"}, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Err != nil {
			b.Fatal(rows[0].Err)
		}
		b.ReportMetric(rows[0].SynthDistance, "synth-dist")
	}
}

// BenchmarkTable2BBR regenerates Table 2's BBR row (the §5.2 case study):
// a closed-form pulse approximation without hidden state.
func BenchmarkTable2BBR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]string{"bbr"}, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Err != nil {
			b.Fatal(rows[0].Err)
		}
		b.ReportMetric(rows[0].SynthDistance, "synth-dist")
		b.ReportMetric(rows[0].FineDistance, "fine-dist")
	}
}

// BenchmarkTable2Students regenerates the student-CCA section of Table 2
// for one representative bespoke algorithm.
func BenchmarkTable2Students(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]string{"student2"}, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Err != nil {
			b.Fatal(rows[0].Err)
		}
		b.ReportMetric(rows[0].SynthDistance, "synth-dist")
	}
}

// BenchmarkTable3Classifier regenerates Table 3: classification of every
// kernel and student CCA, reporting kernel accuracy (the paper gets 10/16
// correct plus informative confusions).
func BenchmarkTable3Classifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, r := range rows {
			if r.Correct {
				correct++
			}
		}
		b.ReportMetric(float64(correct), "correct-labels")
		b.ReportMetric(float64(len(rows)), "ccas")
	}
}

// BenchmarkTable4SearchAccuracy regenerates Table 4 for the Reno run: the
// rank of the fine-tuned handler's bucket after refinement iteration 1.
func BenchmarkTable4SearchAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4([]string{"reno"}, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		b.ReportMetric(float64(rows[0].Rank1), "rank-iter1")
		b.ReportMetric(float64(rows[0].Total1), "buckets")
	}
}

// BenchmarkFig3DistanceMetrics regenerates Figure 3: the constant-error
// sweep across the four metrics on BBR traces, reporting how many sweep
// cells each of DTW and Euclidean got right (DTW should win).
func BenchmarkFig3DistanceMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range experiments.SummarizeFig3(points) {
			switch s.Metric {
			case "dtw":
				b.ReportMetric(float64(s.CorrectN), "dtw-correct")
			case "euclidean":
				b.ReportMetric(float64(s.CorrectN), "euclidean-correct")
			}
		}
	}
}

// BenchmarkFig4BBRPulse regenerates Figure 4: per-segment wins of the
// synthesized vs fine-tuned BBR pulse handlers.
func BenchmarkFig4BBRPulse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SynthWins), "synth-wins")
		b.ReportMetric(float64(r.FineWins), "fine-wins")
	}
}

// BenchmarkFig5HTCP regenerates Figure 5: how close the plain Reno-variant
// handler gets to the fine-tuned HTCP handler.
func BenchmarkFig5HTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RenoDistance, "reno-dist")
		b.ReportMetric(r.FineDistance, "fine-dist")
	}
}

// BenchmarkFig6DSLImpact regenerates Figure 6: student CCA #1 under the
// three DSL inputs; the reported metric is the best (lowest) distance and
// which variant achieved it, encoded as its index.
func BenchmarkFig6DSLImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchScale(), []string{"student1"})
		if err != nil {
			b.Fatal(err)
		}
		best, bestIdx := math.Inf(1), -1
		for j, r := range rows {
			if r.Err == nil && r.Distance < best {
				best, bestIdx = r.Distance, j
			}
		}
		b.ReportMetric(best, "best-dist")
		b.ReportMetric(float64(bestIdx), "best-dsl-index")
	}
}

// BenchmarkSearchEfficiencyReno regenerates §6.1's accounting: size of the
// viable Reno-DSL space and the fraction the refinement loop explored.
func BenchmarkSearchEfficiencyReno(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Efficiency(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SpaceSketches), "space-sketches")
		b.ReportMetric(100*r.FractionExplored, "space-explored-%")
	}
}

// --- Component micro-benchmarks -----------------------------------------

// BenchmarkSimulator30s measures raw simulator throughput: one 30-second
// Reno flow at 10 Mbit/s.
func BenchmarkSimulator30s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceAnalysis measures pcap-record analysis of a 30s capture.
func BenchmarkTraceAnalysis(b *testing.B) {
	res, err := sim.Run(sim.Config{CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.AnalyzeRecords(res.Records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTWDistance measures one banded DTW computation on the standard
// resampled grid.
func BenchmarkDTWDistance(b *testing.B) {
	mk := func(phase float64) dist.Series {
		s := dist.Series{Times: make([]float64, 500), Values: make([]float64, 500)}
		for i := range s.Times {
			t := float64(i) / 50
			s.Times[i] = t
			s.Values[i] = 10 + 5*math.Mod(t+phase, 2.0)
		}
		return s
	}
	a, c := mk(0), mk(0.5)
	m := dist.DTW{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(a, c)
	}
}

// BenchmarkEnumerateRenoSpace measures exhaustive enumeration of the
// depth-3 Reno-DSL sketch space (§6.1's 1,617-analog).
func BenchmarkEnumerateRenoSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		enum.New(dsl.Reno()).Count()
	}
}

// BenchmarkAblationDesignChoices runs the DESIGN.md ablation matrix on
// Reno traces: search metric, bucket pruning, segment selection and
// constant-pool variants under an equal budget.
func BenchmarkAblationDesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.MaxHandlers = 3000
		rows, err := experiments.Ablation("reno", s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Err == nil && r.Variant == "baseline (DTW, buckets, diverse)" {
				b.ReportMetric(r.Distance, "baseline-dist")
			}
		}
	}
}

// --- Scoring fast-path micro-benchmarks ---------------------------------
//
// BenchmarkScoreHandler pins the threshold-aware scoring path: one op is a
// sweep of representative handlers scored through replay.Scorer against real
// Reno segments. The Exact variant scores with no cutoff (the pre-fast-path
// cost); the Cutoff variant holds the cutoff at the best handler's score, the
// steady state of a search whose bucket best is already good — most other
// candidates abandon early. cells/op (DTW cells consumed per sweep) is
// reported from the dist counters so bench diffs catch pruning regressions
// that ns/op noise would hide.

// benchScorerHandlers is the fixed candidate sweep, spanning near-optimal,
// mediocre, wild, and diverging handlers.
var benchScorerHandlers = []string{
	"cwnd + reno-inc",
	"cwnd + 0.5*reno-inc",
	"cwnd + 0.1*reno-inc",
	"cwnd + mss",
	"mss",
	"cwnd + cwnd",
}

func benchmarkScoreHandler(b *testing.B, withCutoff bool) {
	res, err := sim.Run(sim.Config{
		CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond,
		Duration: 30 * time.Second, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		b.Fatal(err)
	}
	segs := tr.Split(16)
	sc := replay.NewScorer(segs, dist.DTW{})
	handlers := make([]*dsl.Node, len(benchScorerHandlers))
	for i, src := range benchScorerHandlers {
		handlers[i] = dsl.MustParse(src)
	}
	cutoff := math.Inf(1)
	if withCutoff {
		// The best candidate's exact score: every worse handler must prove
		// it cannot beat it, the common case mid-search.
		cutoff, _ = sc.Score(handlers[0], math.Inf(1))
	}
	reg := obs.New()
	dist.Observe(reg)
	defer dist.Observe(nil)
	cellsBefore := reg.Report().Counters["dist.dtw_cells"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range handlers {
			sc.Score(h, cutoff)
		}
	}
	b.StopTimer()
	cells := reg.Report().Counters["dist.dtw_cells"] - cellsBefore
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}

// BenchmarkScoreHandlerExact is the no-cutoff baseline.
func BenchmarkScoreHandlerExact(b *testing.B) { benchmarkScoreHandler(b, false) }

// BenchmarkScoreHandlerCutoff is the pruned steady state.
func BenchmarkScoreHandlerCutoff(b *testing.B) { benchmarkScoreHandler(b, true) }

// benchmarkScoreHandlerLanes pins the per-sketch steady state the search
// core actually runs mid-search: the bucket best is already good and its
// handler is settled by the memo cache, so one op is replay.Lanes fresh
// completions of "cwnd + c1*reno-inc" — mediocre factors and a runaway —
// each proving under the incumbent's cutoff that it cannot win. Every
// lane here settles by lower bound on the first segment, which is the
// dominant fate in the real funnel once an incumbent exists (lb_prunes
// dwarf full scores); the cost is replay plus envelope passes, not DP
// cells, so this is the regime the K-wide VM was built for. The batch
// variant scores the set in one ScoreBatch call (one K-wide VM replay
// plus one multi-series lower-bound pass); the scalar variant walks the
// identical lane set one completion at a time, so the pair measures the
// batching win on identical work.
func benchmarkScoreHandlerLanes(b *testing.B, batch bool) {
	res, err := sim.Run(sim.Config{
		CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond,
		Duration: 30 * time.Second, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		b.Fatal(err)
	}
	segs := tr.Split(16)
	sc := replay.NewScorer(segs, dist.DTW{})
	cs := sc.CompileSketch(dsl.MustParse("cwnd + c1*reno-inc"))
	valsK := [][]float64{{0.5}, {0.4}, {0.3}, {0.25}, {0.2}, {0.1}, {0.05}, {2}}
	if len(valsK) != replay.Lanes {
		b.Fatalf("workload has %d lanes, want replay.Lanes = %d", len(valsK), replay.Lanes)
	}
	cutoff, _ := sc.Score(dsl.MustParse("cwnd + reno-inc"), math.Inf(1))
	cutoffs := make([]float64, len(valsK))
	for l := range cutoffs {
		cutoffs[l] = cutoff
	}
	ds := make([]float64, len(valsK))
	exacts := make([]bool, len(valsK))
	reg := obs.New()
	dist.Observe(reg)
	defer dist.Observe(nil)
	cellsBefore := reg.Report().Counters["dist.dtw_cells"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			cs.ScoreBatch(valsK, cutoffs, ds, exacts)
		} else {
			for l := range valsK {
				ds[l], exacts[l] = cs.Score(valsK[l], cutoffs[l])
			}
		}
	}
	b.StopTimer()
	cells := reg.Report().Counters["dist.dtw_cells"] - cellsBefore
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}

// BenchmarkScoreHandlerCutoffBatch is the lane-batched steady state — the
// acceptance number for the K-wide scoring path.
func BenchmarkScoreHandlerCutoffBatch(b *testing.B) { benchmarkScoreHandlerLanes(b, true) }

// BenchmarkScoreHandlerCutoffScalarLanes is the identical lane workload
// scored one completion at a time — the batched variant's direct scalar
// baseline.
func BenchmarkScoreHandlerCutoffScalarLanes(b *testing.B) { benchmarkScoreHandlerLanes(b, false) }

// --- Register-VM replay micro-benchmarks --------------------------------
//
// BenchmarkReplayProgram isolates the replay inner loop the Scorer runs per
// candidate: Program.EvalSeries over a segment's signal columns with the
// hoisted prologue cached, constants patched per call — no metric work.
// BenchmarkReplayClosure replays the identical handler through the
// dsl.Compile closure path (the pre-VM engine, still used by Synthesize)
// so the speedup is visible in one bench run. acks/op reports the segment
// length both loops cover.

// benchReplaySegment returns the longest segment of the standard reno run.
func benchReplaySegment(b *testing.B) *trace.Segment {
	res, err := sim.Run(sim.Config{
		CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond,
		Duration: 30 * time.Second, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		b.Fatal(err)
	}
	segs := tr.Split(16)
	if len(segs) == 0 {
		b.Fatal("no segments")
	}
	seg := segs[0]
	for _, s := range segs {
		if len(s.Samples) > len(seg.Samples) {
			seg = s
		}
	}
	return seg
}

func BenchmarkReplayProgram(b *testing.B) {
	seg := benchReplaySegment(b)
	cols := replay.NewCols(seg)
	sk := dsl.MustParse("cwnd + c1*reno-inc")
	prog := dsl.CompileProgram(sk)
	pro := prog.RunPrologue(cols)
	mss := seg.MSS
	cwnd0 := math.Max(seg.Samples[0].Cwnd, mss)
	out := make([]float64, cols.N)
	ex := dsl.NewExec()
	vals := []float64{0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := prog.EvalSeries(cols, pro, vals, cwnd0, mss, (1<<20)*mss, mss, out, ex); !ok {
			b.Fatal("diverged")
		}
	}
	b.ReportMetric(float64(cols.N), "acks/op")
}

// BenchmarkEvalSeriesBatch sweeps the K-wide VM over lane widths: one op
// replays a fixed workload of 16 completions of "cwnd + c1*reno-inc" over
// the standard segment, in batches of K lanes. K=1 is the batch kernel's
// own scalar degenerate (its overhead floor); wider K amortizes the
// per-row dispatch across lanes.
func BenchmarkEvalSeriesBatch(b *testing.B) {
	seg := benchReplaySegment(b)
	cols := replay.NewCols(seg)
	prog := dsl.CompileProgram(dsl.MustParse("cwnd + c1*reno-inc"))
	pro := prog.RunPrologue(cols)
	mss := seg.MSS
	cwnd0 := math.Max(seg.Samples[0].Cwnd, mss)
	const candidates = 16
	valsK := make([][]float64, candidates)
	outs := make([][]float64, candidates)
	for l := range valsK {
		valsK[l] = []float64{0.1 + 0.05*float64(l)}
		outs[l] = make([]float64, cols.N)
	}
	for _, k := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			rows := make([]int, k)
			oks := make([]bool, k)
			ex := dsl.NewBatchExec()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for at := 0; at < candidates; at += k {
					prog.EvalSeriesBatch(cols, pro, valsK[at:at+k],
						cwnd0, mss, (1<<20)*mss, mss, outs[at:at+k], rows, oks, ex)
				}
			}
			b.ReportMetric(float64(cols.N*candidates), "acks/op")
		})
	}
}

func BenchmarkReplayClosure(b *testing.B) {
	seg := benchReplaySegment(b)
	envs := replay.Envs(seg)
	fn := dsl.Compile(dsl.MustParse("cwnd + 0.7*reno-inc"))
	mss := seg.MSS
	cwnd0 := math.Max(seg.Samples[0].Cwnd, mss)
	out := make([]float64, len(envs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cwnd := cwnd0
		var env dsl.Env
		for j := range envs {
			env = envs[j]
			env.Cwnd = cwnd
			v, ok := fn(&env)
			if !ok {
				b.Fatal("diverged")
			}
			cwnd = math.Min(math.Max(v, mss), (1<<20)*mss)
			out[j] = cwnd / mss
		}
	}
	b.ReportMetric(float64(len(envs)), "acks/op")
}

// --- Observability fast-path micro-benchmarks ---------------------------
//
// The obs layer's contract is that instrumentation left permanently in hot
// paths costs almost nothing when observability is off (nil handles). These
// benchmarks pin that: the disabled counter increment and disabled span
// must stay in the single-digit ns/op range.

// benchNilCounter and friends live at package scope so the compiler cannot
// prove the handles nil and delete the benchmark loop bodies outright.
var (
	benchNilCounter  *obs.Counter
	benchNilRegistry *obs.Registry
	benchSpanSink    *obs.Span
)

// BenchmarkObsDisabledCounter measures Counter.Add on a nil handle — the
// cost every instrumented hot path pays when no registry is attached.
func BenchmarkObsDisabledCounter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchNilCounter.Add(1)
	}
}

// BenchmarkObsDisabledSpan measures a StartSpan/End pair on a nil registry.
func BenchmarkObsDisabledSpan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := benchNilRegistry.StartSpan("bench")
		benchSpanSink = sp
		sp.End()
	}
}

// BenchmarkObsEnabledCounter measures the live atomic increment, for
// comparison with the disabled path.
func BenchmarkObsEnabledCounter(b *testing.B) {
	c := obs.New().Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

// BenchmarkObsEnabledSpanNoSink measures a span round-trip on a live
// registry with no sink attached (phase accounting only).
func BenchmarkObsEnabledSpanNoSink(b *testing.B) {
	r := obs.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench").End()
	}
}

// BenchmarkObsFlightNote pins the flight recorder's acceptance bound: one
// append must stay at or under ~50 ns and never allocate, cheap enough to
// leave always-on under every span end and metric update.
func BenchmarkObsFlightNote(b *testing.B) {
	f := obs.NewFlightRecorder(obs.DefaultFlightEvents)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Note("metric", "bench", 1.5)
	}
}

// BenchmarkLossResponseSynthesis exercises the §3 generalization claim:
// synthesizing the on-loss window update from observed loss reactions.
func BenchmarkLossResponseSynthesis(b *testing.B) {
	res, err := sim.Run(sim.Config{
		CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond,
		Duration: 30 * time.Second, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		b.Fatal(err)
	}
	events := core.ExtractLossEvents(tr)
	if len(events) == 0 {
		b.Fatal("no loss events")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.SynthesizeLossResponse(events, core.Options{
			DSL: dsl.Reno(), MaxHandlers: 20000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out.Error, "rel-error")
	}
}
