// Quickstart: reverse-engineer TCP Reno from packet traces in four steps.
//
//  1. Simulate a Reno bulk flow over a 10 Mbit/s, 40 ms bottleneck and
//     capture its packets (stand-in for tcpdump at the sender).
//  2. Analyze the capture into the observable signal streams: the visible
//     CWND over time plus RTT / ack-rate / time-since-loss.
//  3. Segment the trace at inferred loss events.
//  4. Run the Abagnale synthesis pipeline over the Reno-family DSL and
//     print the recovered cwnd-on-ACK handler.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// Step 1: collect traces under two network conditions — a single
	// condition risks over-fitting (§3.2 of the paper).
	var segments []*trace.Segment
	for i, cfg := range []sim.Config{
		{CCA: "reno", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond},
		{CCA: "reno", Bandwidth: 5e6 / 8, RTT: 80 * time.Millisecond},
	} {
		cfg.Duration = 20 * time.Second
		cfg.Jitter = time.Millisecond // measurement noise
		cfg.Seed = int64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario %d: captured %d packets, %d loss episodes\n",
			i+1, len(res.Records), res.Stats.FastRetransmits)

		// Step 2: reconstruct the observable trace from raw packets.
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			log.Fatal(err)
		}

		// Step 3: split into between-loss segments.
		segments = append(segments, tr.Split(16)...)
	}
	fmt.Printf("total trace segments: %d\n\n", len(segments))

	// Step 4: synthesize within the Reno-family DSL.
	fmt.Println("searching the Reno-DSL sketch space...")
	start := time.Now()
	res, err := core.Synthesize(context.Background(), segments, core.Options{
		DSL:         dsl.Reno(),
		MaxHandlers: 20000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered handler (in %v):\n\n    cwnd <- %s\n\n",
		time.Since(start).Round(time.Millisecond), res.Handler)
	fmt.Printf("distance to the observed traces: %.2f (DTW, summed over segments)\n", res.Distance)
	fmt.Printf("search visited %d candidate handlers across %d buckets\n",
		res.Stats.HandlersScored, res.Stats.SpaceBuckets)
	fmt.Println("\nexpected shape (paper, Table 2): cwnd + 0.7*reno-inc")
}
