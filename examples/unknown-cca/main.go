// Unknown-CCA walkthrough: the full pipeline of Figure 1 against a CCA the
// classifier has never seen.
//
// A "proprietary" algorithm (one of the bespoke student CCAs) is traced;
// the CCAnalyzer-style classifier reports Unknown but names the closest
// known CCAs, which picks the sub-DSL; Abagnale then synthesizes a
// closed-form handler for it.
//
// Run with:
//
//	go run ./examples/unknown-cca
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	const mystery = "student2" // grow-then-reset delay-threshold CCA

	// Build the classifier's reference library from the 16 kernel CCAs
	// (one scenario to keep the example fast).
	scale := experiments.QuickScale()
	scale.RTTs = scale.RTTs[:1]
	fmt.Println("building reference library over the kernel CCAs...")
	cls, err := experiments.BuildClassifier(scale)
	if err != nil {
		log.Fatal(err)
	}

	// Trace the mystery CCA under the same conditions.
	cfg := sim.Config{
		CCA:       mystery,
		Bandwidth: scale.Bandwidths[0],
		RTT:       scale.RTTs[0],
		Duration:  scale.Duration,
		Jitter:    scale.Jitter,
		Seed:      42,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		log.Fatal(err)
	}

	// Classify: expect Unknown with a nearest-family hint.
	key := classify.ConfigKey(int(cfg.RTT/time.Millisecond), cfg.Bandwidth)
	verdict, err := cls.Classify(key, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier verdict: %s", verdict.Label)
	if len(verdict.Nearest) >= 2 {
		fmt.Printf(" (closest: %s, %s)", verdict.Nearest[0].Label, verdict.Nearest[1].Label)
	}
	dslName := verdict.HintDSL()
	fmt.Printf("\nsub-DSL hint: %s\n\n", dslName)

	// Synthesize within the hinted DSL.
	d, err := dsl.Named(dslName)
	if err != nil {
		log.Fatal(err)
	}
	segs := tr.Split(16)
	if len(segs) == 0 {
		segs = []*trace.Segment{{Samples: tr.Samples, MSS: tr.MSS}}
	}
	fmt.Printf("synthesizing over %d trace segments...\n", len(segs))
	out, err := core.Synthesize(context.Background(), segs, core.Options{
		DSL:         d,
		MaxHandlers: 15000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverse-engineered handler:\n\n    cwnd <- %s\n\n", out.Handler)
	fmt.Printf("distance: %.2f over %d segments\n", out.Distance, len(segs))
	fmt.Println("\nground truth (never shown to the pipeline): student2 adds ~MSS/4")
	fmt.Println("per ACK while its delay backlog is below 5 packets, else resets to 2 MSS.")
}
