// Distance-metrics demo: why Abagnale scores candidates with Dynamic Time
// Warping (§4.3, Figure 3).
//
// Four metrics score the true BBR handler and three wrong-family handlers
// against real BBR traces, first with exact constants and then with every
// constant perturbed 2x — the situation the search is in before constants
// are fine-tuned. DTW keeps ranking the true family first across the
// widest error band.
//
// Run with:
//
//	go run ./examples/distance-metrics
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// Collect BBR traces: the periodic PROBE_BW pulses make temporal
	// alignment matter, which separates the metrics.
	var segs []*trace.Segment
	for i, rtt := range []time.Duration{40 * time.Millisecond, 80 * time.Millisecond} {
		res, err := sim.Run(sim.Config{
			CCA:       "bbr",
			Bandwidth: 10e6 / 8,
			RTT:       rtt,
			Duration:  15 * time.Second,
			Jitter:    time.Millisecond,
			Seed:      int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			log.Fatal(err)
		}
		for _, seg := range tr.Split(16) {
			// Score only steady-state segments: BBR's startup and
			// PROBE_RTT transients are driven by hidden state no
			// closed-form handler can track (§5.2 of the paper).
			if seg.Samples[0].Time > 5*time.Second {
				segs = append(segs, seg)
			}
		}
	}
	fmt.Printf("BBR steady-state trace segments: %d\n", len(segs))

	handlers := experiments.Fig3Handlers()
	for _, errFactor := range []float64{1.0, 2.0, 4.0} {
		fmt.Printf("\n=== constant error %.0fx ===\n", errFactor)
		for _, m := range dist.Metrics() {
			type scored struct {
				name string
				d    float64
			}
			scorer := replay.NewScorer(segs, m)
			var results []scored
			for name, h := range handlers {
				hh := experiments.ScaleConstants(h, errFactor)
				d, _ := scorer.Score(hh, math.Inf(1))
				results = append(results, scored{name, d})
			}
			sort.Slice(results, func(i, j int) bool { return results[i].d < results[j].d })
			verdict := "WRONG"
			if results[0].name == "bbr" {
				verdict = "correct"
			}
			fmt.Printf("%-10s ranks %-6s first (%s):", m.Name(), results[0].name, verdict)
			for _, r := range results {
				fmt.Printf("  %s=%.1f", r.name, r.d)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nAt exact constants every metric ranks the true CCA first; as error grows")
	fmt.Println("they all eventually flip. The finer sweep in cmd/experiments fig3 shows")
	fmt.Println("DTW keeps the correct ranking over the widest error band — the paper's")
	fmt.Println("Figure 3 finding, and why Abagnale can rank sketches before constants")
	fmt.Println("are tuned.")
}
