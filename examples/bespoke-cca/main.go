// Bespoke-CCA demo: bring your own algorithm.
//
// A brand-new CCA ("lotus") is implemented against the cca.Algorithm
// interface, registered, traced through the simulated testbed, and handed
// to the pipeline — the workflow a researcher would use to check what an
// in-development algorithm's observable behavior reveals about it.
//
// Lotus is Westwood-flavored: Reno growth, but after every loss it pins
// the window to 0.85x the estimated BDP.
//
// Run with:
//
//	go run ./examples/bespoke-cca
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Lotus is the bespoke algorithm under study.
type Lotus struct{}

// Name implements cca.Algorithm.
func (*Lotus) Name() string { return "lotus" }

// Reset implements cca.Algorithm.
func (*Lotus) Reset(*cca.State) {}

// OnAck implements cca.Algorithm: plain Reno growth.
func (*Lotus) OnAck(s *cca.State, acked float64) {
	if s.InSlowStart {
		cca.SlowStart(s, acked)
		return
	}
	s.Cwnd += s.MSS * acked / s.Cwnd
}

// OnLoss implements cca.Algorithm: pin to 85% of the measured BDP.
func (*Lotus) OnLoss(s *cca.State, timeout bool) {
	bdp := s.AckRate * s.MinRTT.Seconds()
	s.Ssthresh = math.Max(0.85*bdp, 2*s.MSS)
	if timeout {
		s.Cwnd = 2 * s.MSS
	} else {
		s.Cwnd = s.Ssthresh
	}
}

func main() {
	cca.Register("lotus", func() cca.Algorithm { return &Lotus{} })

	var segs []*trace.Segment
	for i, cfg := range []sim.Config{
		{CCA: "lotus", Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond},
		{CCA: "lotus", Bandwidth: 15e6 / 8, RTT: 20 * time.Millisecond},
	} {
		cfg.Duration = 20 * time.Second
		cfg.Jitter = time.Millisecond
		cfg.Seed = int64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			log.Fatal(err)
		}
		segs = append(segs, tr.Split(16)...)
		fmt.Printf("scenario %d: %.2f Mbit/s achieved, %d loss episodes\n",
			i+1, res.Stats.Throughput*8/1e6, res.Stats.FastRetransmits)
	}

	// Lotus uses rate and delay signals, so search the delay DSL — in a
	// real investigation the classifier's hint would pick this.
	fmt.Printf("\nsynthesizing over %d segments in the delay DSL...\n", len(segs))
	res, err := core.Synthesize(context.Background(), segs, core.Options{
		DSL:         dsl.Delay(),
		MaxHandlers: 15000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat the traces reveal about lotus:\n\n    cwnd <- %s\n\n", res.Handler)
	fmt.Printf("distance: %.2f\n", res.Distance)
	fmt.Println("\nground truth: Reno-style growth between losses (the between-loss")
	fmt.Println("segments the pipeline scores), with a BDP-pinned multiplicative decrease.")
}
